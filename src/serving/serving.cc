#include "serving/serving.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <optional>
#include <utility>

#include "ckks/schedule.h"
#include "common/check.h"

namespace cross::serving {

ServingEngine::ServingEngine(const ckks::CkksContext &ctx,
                             ServingConfig cfg)
    : ctx_(ctx), cfg_(cfg), batch_(ctx)
{
    requireThat(cfg_.maxQueueDepth > 0,
                "ServingEngine: maxQueueDepth must be positive");
    requireThat(cfg_.maxBatch > 0,
                "ServingEngine: maxBatch must be positive");
    requireThat(cfg_.dispatchers > 0,
                "ServingEngine: need at least one dispatcher");
    requireThat(cfg_.costScale > 0,
                "ServingEngine: costScale must be positive");
    paused_ = cfg_.startPaused;
    dispatchers_.reserve(cfg_.dispatchers);
    for (u32 i = 0; i < cfg_.dispatchers; ++i)
        dispatchers_.emplace_back([this] { dispatchLoop(); });
}

ServingEngine::~ServingEngine()
{
    shutdown();
}

ServingEngine::Stream
ServingEngine::openStream(StreamOptions opts)
{
    requireThat(opts.weight >= 1,
                "ServingEngine::openStream: tenant weight must be >= 1");
    {
        std::lock_guard<std::mutex> lock(m_);
        sched_.setWeight(opts.tenant, opts.weight);
    }
    return Stream(this, nextStream_.fetch_add(1) + 1, opts.tenant,
                  ctx_.keySwitchCache());
}

ServingEngine::BatchKey
ServingEngine::keyOf(const Request &r)
{
    return BatchKey{r.pipe ? static_cast<const void *>(r.pipe)
                           : static_cast<const void *>(r.model),
                    r.input.limbs(), std::bit_cast<u64>(r.input.scale)};
}

void
ServingEngine::checkStream(const Stream &stream) const
{
    requireThat(stream.engine_ == this,
                "ServingEngine::submit: stream does not belong to this "
                "engine (or was moved from)");
}

std::future<ckks::Ciphertext>
ServingEngine::submit(Stream &stream, const ckks::Pipeline &pipe,
                      ckks::Ciphertext input, SubmitOptions opts)
{
    checkStream(stream);
    // Ciphertext-operand stages reference a caller-sized rhs batch;
    // a dynamically formed batch has no matching rhs, so reject the
    // model shape at submit time rather than failing whole batches.
    for (const auto &st : pipe.stages())
        requireThat(st.rhs == nullptr,
                    "ServingEngine::submit: pipeline has a "
                    "ciphertext-operand stage; only plaintext/rotation "
                    "pipelines can be dynamically batched");
    Request r;
    r.pipe = &pipe;
    r.input = std::move(input);
    r.stream = stream.id_;
    r.tenant = stream.tenant_;
    if (opts.deadlineUs > 0) {
        r.hasDeadline = true;
        r.deadline =
            Clock::now() + std::chrono::microseconds(opts.deadlineUs);
    }
    return enqueue(std::move(r));
}

std::future<ckks::Ciphertext>
ServingEngine::submit(Stream &stream, graph::CompiledGraph &model,
                      ckks::Ciphertext input, SubmitOptions opts)
{
    checkStream(stream);
    requireThat(model.inputCount() == 1 && model.outputCount() == 1,
                "ServingEngine::submit: serving models must be "
                "1-input / 1-output graphs");
    Request r;
    r.model = &model;
    r.input = std::move(input);
    r.stream = stream.id_;
    r.tenant = stream.tenant_;
    if (opts.deadlineUs > 0) {
        r.hasDeadline = true;
        r.deadline =
            Clock::now() + std::chrono::microseconds(opts.deadlineUs);
    }
    return enqueue(std::move(r));
}

double
ServingEngine::modelEstimateUs(const Request &r) const
{
    if (r.input.limbs() < 1)
        return 0.0;
    const size_t level = r.input.limbs() - 1;
    const void *target = r.pipe ? static_cast<const void *>(r.pipe)
                                : static_cast<const void *>(r.model);
    const auto key = std::make_pair(target, level);
    {
        std::lock_guard<std::mutex> lock(m_);
        const auto it = estCache_.find(key);
        if (it != estCache_.end())
            return it->second;
    }
    // Pricing enumerates the whole kernel schedule -- keep it outside
    // the engine lock and memoise per (model, level).
    double us = 0.0;
    if (r.pipe) {
        if (cfg_.costModel)
            us = cfg_.costModel->pipelineLatencyUs(r.pipe->pipelineOps(),
                                                   level, 1);
    } else {
        // Compiled graphs carry their own schedule price (0 when the
        // graph was compiled without a device).
        switch (r.model->schedule()) {
          case graph::ScheduleKind::PerOp:
            us = r.model->perOpCostUs();
            break;
          case graph::ScheduleKind::Hoisted:
            us = r.model->hoistedCostUs();
            break;
          default:
            us = r.model->fusedCostUs();
            break;
        }
    }
    std::lock_guard<std::mutex> lock(m_);
    estCache_.emplace(key, us);
    return us;
}

double
ServingEngine::estimatePipelineUs(const ckks::Pipeline &pipe,
                                  size_t level) const
{
    if (!cfg_.costModel)
        return 0.0;
    return cfg_.costScale *
           cfg_.costModel->pipelineLatencyUs(pipe.pipelineOps(), level, 1);
}

std::future<ckks::Ciphertext>
ServingEngine::enqueue(Request r)
{
    requireThat(r.input.limbs() >= 1,
                "ServingEngine::submit: empty input ciphertext");
    std::future<ckks::Ciphertext> fut = r.result.get_future();
    // Admission control: a deadline the batch-latency estimate says we
    // cannot make is shed *now*, before it occupies a queue slot the
    // feasible requests need. Estimate outside the lock (it prices a
    // kernel schedule on a miss).
    double est_wall_us = 0.0;
    if (r.hasDeadline && cfg_.costModel)
        est_wall_us = cfg_.costScale * modelEstimateUs(r);
    {
        std::lock_guard<std::mutex> lock(m_);
        if (stopping_) {
            ++stats_.rejected;
            ++tenantStats_[r.tenant].rejected;
            r.result.set_exception(std::make_exception_ptr(ShutdownError(
                "ServingEngine: engine is shutting down")));
            return fut;
        }
        if (r.hasDeadline) {
            const auto earliest_finish =
                Clock::now() + std::chrono::microseconds(
                                   static_cast<u64>(est_wall_us));
            if (r.deadline < earliest_finish) {
                ++stats_.rejected;
                ++stats_.deadlineRejected;
                ++tenantStats_[r.tenant].rejected;
                r.result.set_exception(
                    std::make_exception_ptr(DeadlineError(
                        "ServingEngine: deadline infeasible at submit "
                        "(closer than the batch-latency estimate)")));
                return fut;
            }
        }
        if (sched_.size() >= cfg_.maxQueueDepth) {
            // Backpressure: reject-with-error, never block the
            // submitter -- a closed-loop client slows down, an
            // open-loop one sees the overload explicitly.
            ++stats_.rejected;
            ++tenantStats_[r.tenant].rejected;
            r.result.set_exception(std::make_exception_ptr(QueueFullError(
                "ServingEngine: request queue is full")));
            return fut;
        }
        ++stats_.submitted;
        ++tenantStats_[r.tenant].submitted;
        const u64 tenant = r.tenant;
        std::optional<Clock::time_point> deadline;
        if (r.hasDeadline)
            deadline = r.deadline;
        sched_.push(tenant, deadline, std::move(r));
    }
    cv_.notify_one();
    return fut;
}

void
ServingEngine::collectExpiredLocked(std::vector<Request> &shed)
{
    if (sched_.empty())
        return;
    for (auto &e : sched_.popExpired(Clock::now())) {
        ++stats_.failed;
        ++stats_.deadlineShed;
        ++tenantStats_[e.tenant].shed;
        shed.push_back(std::move(e.payload));
    }
}

std::vector<ServingEngine::Request>
ServingEngine::formBatchLocked()
{
    // The leader is the scheduler's pick: weighted DRR across tenants,
    // EDF inside the winning tenant. The rest of the batch is filled
    // with requests sharing the leader's (model, level, scale) from
    // any tenant -- they ride the same resident rotation-key working
    // set, and each one is charged to its own tenant's DRR account.
    auto leader = sched_.popNext();
    internalCheck(leader.has_value(),
                  "ServingEngine: batch forming on an empty scheduler");
    std::vector<Request> formed;
    formed.push_back(std::move(leader->payload));
    const BatchKey key = keyOf(formed.front());
    if (formed.size() < cfg_.maxBatch) {
        auto fill = sched_.popMatching(
            [&](const DrrScheduler<Request>::Entry &e) {
                return keyOf(e.payload) == key;
            },
            cfg_.maxBatch - formed.size());
        for (auto &e : fill)
            formed.push_back(std::move(e.payload));
    }
    ++stats_.batches;
    stats_.batchedRequests += formed.size();
    stats_.maxBatch = std::max<u64>(stats_.maxBatch, formed.size());
    return formed;
}

void
ServingEngine::dispatchLoop()
{
    for (;;) {
        std::vector<Request> formed;
        std::vector<Request> shed;
        {
            std::unique_lock<std::mutex> lock(m_);
            cv_.wait(lock, [&] {
                return stopping_ || (!paused_ && !sched_.empty());
            });
            if (sched_.empty()) {
                if (stopping_)
                    return; // drained
                continue;
            }
            // Shed before forming: a request whose deadline passed
            // while it waited must not spend a batch slot.
            collectExpiredLocked(shed);
            if (!sched_.empty() && cfg_.maxBatchWaitMicros > 0 &&
                !stopping_ && sched_.size() < cfg_.maxBatch) {
                // Batch-growing patience: hold the batch open up to
                // the knob so late arrivals join it. A full batch,
                // pause(), or shutdown() ends the wait early; the
                // queue can only grow while we hold the leader slot,
                // never drain (other dispatchers wait on cv_ too, but
                // a spurious-wake race is resolved by the re-checks
                // below).
                const auto deadline =
                    Clock::now() +
                    std::chrono::microseconds(cfg_.maxBatchWaitMicros);
                cv_.wait_until(lock, deadline, [&] {
                    return stopping_ || paused_ ||
                           sched_.size() >= cfg_.maxBatch;
                });
                // Deadlines kept ticking through the wait.
                collectExpiredLocked(shed);
            }
            if (!sched_.empty() && !(paused_ && !stopping_))
                formed = formBatchLocked();
        }
        // Promises are fulfilled outside the lock: a waiter woken by
        // set_exception may immediately call back into the engine.
        for (auto &r : shed)
            r.result.set_exception(std::make_exception_ptr(DeadlineError(
                "ServingEngine: deadline passed while queued")));
        if (!formed.empty())
            execute(formed);
        // An empty round (all shed / paused / spurious) loops back to
        // the gate, which also handles the stopping_ + drained exit.
    }
}

void
ServingEngine::execute(std::vector<Request> &reqs)
{
    ckks::CtVec inputs;
    inputs.reserve(reqs.size());
    for (auto &r : reqs)
        inputs.push_back(std::move(r.input));
    try {
        ckks::CtVec out;
        if (reqs.front().pipe) {
            out = batch_.run(inputs, *reqs.front().pipe);
        } else {
            graph::CompiledGraph *model = reqs.front().model;
            // One run at a time per model: CompiledGraph reuses its
            // value slots across runs, so two dispatchers must not
            // drive the same model concurrently.
            std::lock_guard<std::mutex> lock(modelLock(model));
            out = std::move(
                model->run(batch_, {std::move(inputs)}).front());
        }
        internalCheck(out.size() == reqs.size(),
                      "ServingEngine: batch result size mismatch");
        // Count before fulfilling: a client that observed its future
        // ready must already find itself in stats().completed.
        {
            std::lock_guard<std::mutex> lock(m_);
            stats_.completed += reqs.size();
            for (const auto &r : reqs)
                ++tenantStats_[r.tenant].completed;
        }
        for (size_t i = 0; i < reqs.size(); ++i)
            reqs[i].result.set_value(std::move(out[i]));
    } catch (...) {
        // The whole batch shares one failure: every member has the
        // same (model, level, scale), so a validation error for one
        // is a validation error for all.
        const std::exception_ptr err = std::current_exception();
        {
            std::lock_guard<std::mutex> lock(m_);
            stats_.failed += reqs.size();
        }
        for (auto &r : reqs)
            r.result.set_exception(err);
    }
}

std::mutex &
ServingEngine::modelLock(const void *model)
{
    std::lock_guard<std::mutex> lock(m_);
    auto &slot = modelLocks_[model];
    if (!slot)
        slot = std::make_unique<std::mutex>();
    return *slot;
}

void
ServingEngine::pause()
{
    {
        std::lock_guard<std::mutex> lock(m_);
        paused_ = true;
    }
    // Wake dispatchers sitting in the batch-growing timed wait: its
    // predicate treats pause as "stop waiting, re-check the gate".
    cv_.notify_all();
}

void
ServingEngine::resume()
{
    {
        std::lock_guard<std::mutex> lock(m_);
        paused_ = false;
    }
    cv_.notify_all();
}

void
ServingEngine::shutdown()
{
    std::vector<std::thread> workers;
    {
        std::lock_guard<std::mutex> lock(m_);
        stopping_ = true;
        paused_ = false; // a paused engine still drains
        workers.swap(dispatchers_);
    }
    cv_.notify_all();
    for (auto &t : workers)
        t.join();
}

ServingStats
ServingEngine::stats() const
{
    std::lock_guard<std::mutex> lock(m_);
    return stats_;
}

std::map<u64, TenantStats>
ServingEngine::tenantStats() const
{
    std::lock_guard<std::mutex> lock(m_);
    return tenantStats_;
}

size_t
ServingEngine::queueDepth() const
{
    std::lock_guard<std::mutex> lock(m_);
    return sched_.size();
}

} // namespace cross::serving
