/**
 * @file
 * Async encrypted-inference serving engine: a futures-based submission
 * API over the existing thread pool, with dynamic batch forming.
 *
 * The paper's throughput story is amortisation across batches
 * (Fig. 11b): the switching-key operands are streamed once and reused
 * by every ciphertext of a batch. BatchEvaluator delivers that for a
 * caller who already *has* a batch; this layer manufactures the
 * batches from many concurrent client streams, the way the ngraph
 * runtime split separates compile-once models from a scheduler-owning
 * runtime:
 *
 *  - submit() enqueues one encrypted request (a ciphertext plus the
 *    model to run it through -- a caller-owned fused Pipeline or a
 *    1-input/1-output graph::CompiledGraph) and returns a
 *    std::future<Ciphertext> immediately.
 *  - Dispatcher threads coalesce everything waiting for the same
 *    (model, level, scale) into one Pipeline batch and execute it as
 *    a single BatchEvaluator::run over the global thread pool. The
 *    grouping key is exactly the rotation-key working set: requests
 *    sharing a model at one level touch the same (key, level)
 *    precomps, so the LRU KeySwitchCache serves the whole batch from
 *    the resident set instead of thrashing between key sets.
 *    Batches are formed from whatever is queued when a dispatcher
 *    frees up ("continuous batching"): under closed-loop load the
 *    batch size self-tunes to the number of in-flight streams, with
 *    no artificial batching delay at low load.
 *  - The queue is bounded: a submit() past maxQueueDepth is rejected
 *    with QueueFullError delivered through the returned future (the
 *    backpressure signal; the engine never blocks a submitter).
 *  - Every open Stream holds a KeySwitchCache::ReaderGuard, so
 *    precomp references stay valid for as long as the stream may
 *    read them, and retired precomp storage (LRU evictions under a
 *    byte budget) is reclaimed when the last stream quiesces.
 *
 * Results are bit-identical to running each request sequentially
 * through the scalar evaluator, whatever batches the dispatcher forms
 * -- that is BatchEvaluator::run's conformance guarantee, and the
 * closed-loop bench re-asserts it end to end.
 *
 * Lifetime rules: the context, every submitted Pipeline / model and
 * the key material they reference must outlive the engine's last
 * in-flight request; Streams must not outlive their engine. One
 * engine per context is the intended shape (the cache residency
 * budget is context-level).
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "ckks/batch_evaluator.h"
#include "ckks/context.h"
#include "ckks/graph/compiler.h"
#include "ckks/keyswitch_cache.h"
#include "common/types.h"

namespace cross::serving {

/** The compiled-model layer lives under ckks::graph. */
namespace graph = cross::ckks::graph;

/** Base of every rejection the engine delivers through a future. */
class RejectedError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Backpressure: the bounded request queue was at maxQueueDepth. */
class QueueFullError : public RejectedError
{
  public:
    using RejectedError::RejectedError;
};

/** The engine stopped accepting before this request was queued. */
class ShutdownError : public RejectedError
{
  public:
    using RejectedError::RejectedError;
};

/** Admission and batch-forming knobs. */
struct ServingConfig
{
    /** Pending requests past this are rejected (QueueFullError). */
    size_t maxQueueDepth = 1024;
    /** Most requests coalesced into one formed batch. */
    size_t maxBatch = 64;
    /**
     * Batch-growing patience: after waking on a non-empty queue, a
     * dispatcher waits up to this long for the queue to reach maxBatch
     * before forming a batch from whatever is pending. 0 (the default)
     * keeps pure continuous batching -- no artificial delay. Under low
     * open-loop load a small wait trades that latency for larger
     * batches, i.e. more key-operand amortisation per launch. pause(),
     * resume() and shutdown() all cut the wait short.
     */
    u64 maxBatchWaitMicros = 0;
    /** Batch-forming/executing threads. Each executes one batch at a
     *  time through the shared global thread pool, so 1 (the default)
     *  already saturates the pool; more overlap batch forming with
     *  execution. */
    u32 dispatchers = 1;
    /** Start with dispatch paused (requests queue but do not run
     *  until resume()) -- deterministic batch-forming for tests. */
    bool startPaused = false;
};

/** Monotonic engine counters (a snapshot; see stats()). */
struct ServingStats
{
    u64 submitted = 0;       ///< requests admitted to the queue
    u64 rejected = 0;        ///< backpressure + post-shutdown rejects
    u64 completed = 0;       ///< futures fulfilled with a result
    u64 failed = 0;          ///< futures fulfilled with an exception
    u64 batches = 0;         ///< batches formed
    u64 batchedRequests = 0; ///< requests across all formed batches
    u64 maxBatch = 0;        ///< largest batch formed
};

/** Futures-based request broker over BatchEvaluator. */
class ServingEngine
{
  public:
    explicit ServingEngine(const ckks::CkksContext &ctx,
                           ServingConfig cfg = {});
    /** Drains the queue (shutdown()) before destruction. */
    ~ServingEngine();

    ServingEngine(const ServingEngine &) = delete;
    ServingEngine &operator=(const ServingEngine &) = delete;

    /**
     * One client's submission handle. Owns the stream's
     * KeySwitchCache::ReaderGuard: while the stream is open, cached
     * precomp references its requests read stay valid even across LRU
     * evictions; closing (destroying) the last stream is the quiesce
     * point where retired precomp storage is reclaimed. Movable, not
     * copyable; a moved-from stream cannot submit.
     */
    class Stream
    {
      public:
        Stream(Stream &&other) noexcept
            : engine_(other.engine_), id_(other.id_),
              guard_(std::move(other.guard_))
        {
            other.engine_ = nullptr;
        }
        Stream &operator=(Stream &&other) noexcept
        {
            if (this != &other) {
                guard_ = std::move(other.guard_);
                engine_ = other.engine_;
                id_ = other.id_;
                other.engine_ = nullptr;
            }
            return *this;
        }
        Stream(const Stream &) = delete;
        Stream &operator=(const Stream &) = delete;

        u64 id() const { return id_; }

      private:
        friend class ServingEngine;
        Stream(ServingEngine *engine, u64 id,
               const ckks::KeySwitchCache &cache)
            : engine_(engine), id_(id), guard_(cache)
        {
        }

        ServingEngine *engine_;
        u64 id_;
        ckks::KeySwitchCache::ReaderGuard guard_;
    };

    /** Open a request stream (thread-safe). */
    Stream openStream();

    /**
     * Submit one request: run @p input through the caller-owned fused
     * @p pipe. Returns immediately; the future resolves to the result
     * ciphertext, or to QueueFullError / ShutdownError on rejection,
     * or to the evaluation error if the batch failed. The pipeline
     * must contain no ciphertext-operand (rhs) stages -- those are
     * batch-shaped and cannot be re-batched dynamically -- and must
     * outlive the future's completion.
     *
     * @throws std::invalid_argument on misuse detected at submit time
     *         (foreign/moved-from stream, rhs stages, empty input).
     */
    std::future<ckks::Ciphertext> submit(Stream &stream,
                                         const ckks::Pipeline &pipe,
                                         ckks::Ciphertext input);
    /** Stages hold pointers; a temporary pipeline would dangle. */
    std::future<ckks::Ciphertext> submit(Stream &, ckks::Pipeline &&,
                                         ckks::Ciphertext) = delete;

    /**
     * Submit against a compiled model: @p model must be a
     * 1-input / 1-output graph (requests are single ciphertexts; the
     * engine forms the CtVec batches). The engine serialises runs of
     * one CompiledGraph (its value slots are reused per run), so a
     * model shared by many streams executes its coalesced batches one
     * after another -- which is the batching win, not a limitation.
     */
    std::future<ckks::Ciphertext> submit(Stream &stream,
                                         graph::CompiledGraph &model,
                                         ckks::Ciphertext input);

    /** @name Dispatch gate. pause() lets requests accumulate (they
     *  still count against the queue bound); resume() releases the
     *  dispatchers. @{ */
    void pause();
    void resume();
    /** @} */

    /**
     * Stop accepting, run every already-queued request to completion,
     * and join the dispatchers. Idempotent; called by the destructor.
     * Submissions during/after shutdown resolve to ShutdownError.
     */
    void shutdown();

    ServingStats stats() const;
    /** Requests queued and not yet claimed by a dispatcher. */
    size_t queueDepth() const;

    const ckks::CkksContext &context() const { return ctx_; }

  private:
    struct Request
    {
        const ckks::Pipeline *pipe = nullptr;    ///< exactly one of
        graph::CompiledGraph *model = nullptr;   ///< pipe / model set
        ckks::Ciphertext input;
        std::promise<ckks::Ciphertext> result;
        u64 stream = 0;
    };

    /** Batch-forming key: the model identity (== its rotation-key
     *  working set) plus the request's level and exact scale bits. */
    struct BatchKey
    {
        const void *target;
        size_t limbs;
        u64 scaleBits;

        bool operator==(const BatchKey &o) const
        {
            return target == o.target && limbs == o.limbs &&
                   scaleBits == o.scaleBits;
        }
    };

    static BatchKey keyOf(const Request &r);

    void checkStream(const Stream &stream) const;
    std::future<ckks::Ciphertext> enqueue(Request r);
    void dispatchLoop();
    /** Form one batch from the queue front's key. m_ must be held. */
    std::vector<Request> formBatchLocked();
    void execute(std::vector<Request> &reqs);
    std::mutex &modelLock(const void *model);

    const ckks::CkksContext &ctx_;
    const ServingConfig cfg_;
    ckks::BatchEvaluator batch_;

    mutable std::mutex m_;
    std::condition_variable cv_;
    std::deque<Request> queue_;
    bool paused_ = false;
    bool stopping_ = false;
    ServingStats stats_;
    /** Per-CompiledGraph run serialisation (value-slot reuse). */
    std::map<const void *, std::unique_ptr<std::mutex>> modelLocks_;

    std::atomic<u64> nextStream_{0};
    std::vector<std::thread> dispatchers_;
};

} // namespace cross::serving
