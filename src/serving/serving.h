/**
 * @file
 * Async encrypted-inference serving engine: a futures-based submission
 * API over the existing thread pool, with dynamic batch forming,
 * multi-tenant weighted fairness and deadline-aware load shedding.
 *
 * The paper's throughput story is amortisation across batches
 * (Fig. 11b): the switching-key operands are streamed once and reused
 * by every ciphertext of a batch. BatchEvaluator delivers that for a
 * caller who already *has* a batch; this layer manufactures the
 * batches from many concurrent client streams, the way the ngraph
 * runtime split separates compile-once models from a scheduler-owning
 * runtime:
 *
 *  - submit() enqueues one encrypted request (a ciphertext plus the
 *    model to run it through -- a caller-owned fused Pipeline or a
 *    1-input/1-output graph::CompiledGraph) and returns a
 *    std::future<Ciphertext> immediately. SubmitOptions optionally
 *    attaches a per-request deadline.
 *  - Every Stream belongs to a *tenant* (StreamOptions: tenant id +
 *    scheduling weight). Pending requests live in per-tenant queues;
 *    dispatchers pick the next request by weighted deficit-round-robin
 *    across tenants with an earliest-deadline-first order inside each
 *    tenant (drr_scheduler.h), so a low-weight tenant keeps its
 *    weighted share of service even under a saturating high-priority
 *    load, and the most urgent request of the tenant that is up is
 *    always served first.
 *  - The chosen request leads a batch; the rest of the batch is filled
 *    with requests sharing its (model, level, scale) from any tenant
 *    (each charged to its own tenant's DRR account). The grouping key
 *    is exactly the rotation-key working set: requests sharing a model
 *    at one level touch the same (key, level) precomps, so the LRU
 *    KeySwitchCache serves the whole batch from the resident set
 *    instead of thrashing between key sets. Batches are formed from
 *    whatever is queued when a dispatcher frees up ("continuous
 *    batching"), with no artificial delay at low load.
 *  - Deadline-aware shedding: a submit whose deadline is provably
 *    infeasible -- already in the past, or closer than the cost
 *    model's batch-latency estimate for its model
 *    (HeOpCostModel::pipelineLatencyUs, scaled by
 *    ServingConfig::costScale) -- is rejected up front with
 *    DeadlineError; a queued request whose deadline passes while it
 *    waits is shed at dispatch time instead of wasting a batch slot.
 *    Both land in ServingStats (deadlineRejected / deadlineShed).
 *  - The queue is bounded: a submit() past maxQueueDepth is rejected
 *    with QueueFullError delivered through the returned future (the
 *    backpressure signal; the engine never blocks a submitter).
 *  - Every open Stream holds a KeySwitchCache::ReaderGuard, so
 *    precomp references stay valid for as long as the stream may
 *    read them, and retired precomp storage (LRU evictions under a
 *    byte budget) is reclaimed when the last stream quiesces.
 *
 * Results are bit-identical to running each request sequentially
 * through the scalar evaluator, whatever batches the dispatcher forms
 * -- that is BatchEvaluator::run's conformance guarantee, and the
 * closed- and open-loop benches re-assert it end to end.
 *
 * Lifetime rules: the context, every submitted Pipeline / model and
 * the key material they reference must outlive the engine's last
 * in-flight request; Streams must not outlive their engine. One
 * engine per context is the intended shape (the cache residency
 * budget is context-level). See docs/SERVING.md for the full
 * semantics.
 */
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "ckks/batch_evaluator.h"
#include "ckks/context.h"
#include "ckks/graph/compiler.h"
#include "ckks/keyswitch_cache.h"
#include "common/types.h"
#include "serving/drr_scheduler.h"

namespace cross::serving {

/** The compiled-model layer lives under ckks::graph. */
namespace graph = cross::ckks::graph;

/** Base of every rejection the engine delivers through a future. */
class RejectedError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Backpressure: the bounded request queue was at maxQueueDepth. */
class QueueFullError : public RejectedError
{
  public:
    using RejectedError::RejectedError;
};

/** The engine stopped accepting before this request was queued. */
class ShutdownError : public RejectedError
{
  public:
    using RejectedError::RejectedError;
};

/**
 * Load shedding: the request's deadline was infeasible at submit time
 * (past, or closer than the cost model's latency estimate), or passed
 * while the request waited in the queue.
 */
class DeadlineError : public RejectedError
{
  public:
    using RejectedError::RejectedError;
};

/** Admission, batch-forming and scheduling knobs. */
struct ServingConfig
{
    /** Pending requests past this are rejected (QueueFullError). */
    size_t maxQueueDepth = 1024;
    /** Most requests coalesced into one formed batch. */
    size_t maxBatch = 64;
    /**
     * Batch-growing patience: after waking on a non-empty queue, a
     * dispatcher waits up to this long for the queue to reach maxBatch
     * before forming a batch from whatever is pending. 0 (the default)
     * keeps pure continuous batching -- no artificial delay. Under low
     * open-loop load a small wait trades that latency for larger
     * batches, i.e. more key-operand amortisation per launch. pause(),
     * resume() and shutdown() all cut the wait short.
     */
    u64 maxBatchWaitMicros = 0;
    /** Batch-forming/executing threads. Each executes one batch at a
     *  time through the shared global thread pool, so 1 (the default)
     *  already saturates the pool; more overlap batch forming with
     *  execution. */
    u32 dispatchers = 1;
    /** Start with dispatch paused (requests queue but do not run
     *  until resume()) -- deterministic batch-forming for tests. */
    bool startPaused = false;
    /**
     * Deadline admission control: when set, a submit carrying a
     * deadline is rejected (DeadlineError) unless
     *
     *     now + costScale * estimate <= deadline
     *
     * where estimate is HeOpCostModel::pipelineLatencyUs of the
     * request's pipeline at its level (batch 1, the conservative
     * no-amortisation bound), or the compiled graph's scheduled cost.
     * Null (the default) disables estimate-based admission control;
     * already-expired deadlines are still rejected, and queued
     * requests whose deadline passes are still shed at dispatch.
     * The model must outlive the engine.
     */
    const ckks::HeOpCostModel *costModel = nullptr;
    /**
     * Wall-clock microseconds per cost-model microsecond. The cost
     * model prices a simulated accelerator; the host CPU running the
     * functional stack is slower by a roughly constant factor, so
     * calibrate with a measured ratio (the open-loop bench divides a
     * measured sequential latency by the model estimate). 1.0 takes
     * the model's numbers at face value.
     */
    double costScale = 1.0;
};

/** Tenant identity and scheduling share of one stream. */
struct StreamOptions
{
    /** Tenant (fairness account) this stream's requests bill to. */
    u64 tenant = 0;
    /**
     * DRR weight of the tenant -- its service share per scheduling
     * round relative to other tenants (a weight-4 tenant is served 4
     * requests for every 1 of a weight-1 tenant when both are
     * backlogged). Must be >= 1. The tenant's weight is updated each
     * time a stream opens for it; the last setting wins.
     */
    u32 weight = 1;
};

/** Per-request submission options. */
struct SubmitOptions
{
    /**
     * Deadline, microseconds from submit time; 0 (the default) means
     * best-effort (no deadline -- scheduled after the tenant's
     * deadline-bearing requests, FIFO among themselves, never shed).
     */
    u64 deadlineUs = 0;
};

/** Per-tenant monotonic counters (a snapshot; see tenantStats()). */
struct TenantStats
{
    u64 submitted = 0; ///< requests admitted to this tenant's queue
    u64 rejected = 0;  ///< backpressure + shutdown + infeasible-deadline
    u64 completed = 0; ///< futures fulfilled with a result
    u64 shed = 0;      ///< deadline passed while queued (subset of failed)
};

/** Monotonic engine counters (a snapshot; see stats()). */
struct ServingStats
{
    u64 submitted = 0;        ///< requests admitted to the queue
    u64 rejected = 0;         ///< backpressure + shutdown + deadline rejects
    u64 completed = 0;        ///< futures fulfilled with a result
    u64 failed = 0;           ///< futures fulfilled with an exception
    u64 batches = 0;          ///< batches formed
    u64 batchedRequests = 0;  ///< requests across all formed batches
    u64 maxBatch = 0;         ///< largest batch formed
    u64 deadlineRejected = 0; ///< infeasible at submit (subset of rejected)
    u64 deadlineShed = 0;     ///< expired while queued (subset of failed)
};

/** Futures-based request broker over BatchEvaluator. */
class ServingEngine
{
  public:
    explicit ServingEngine(const ckks::CkksContext &ctx,
                           ServingConfig cfg = {});
    /** Drains the queue (shutdown()) before destruction. */
    ~ServingEngine();

    ServingEngine(const ServingEngine &) = delete;
    ServingEngine &operator=(const ServingEngine &) = delete;

    /**
     * One client's submission handle. Owns the stream's
     * KeySwitchCache::ReaderGuard: while the stream is open, cached
     * precomp references its requests read stay valid even across LRU
     * evictions; closing (destroying) the last stream is the quiesce
     * point where retired precomp storage is reclaimed. Movable, not
     * copyable; a moved-from stream cannot submit.
     */
    class Stream
    {
      public:
        Stream(Stream &&other) noexcept
            : engine_(other.engine_), id_(other.id_),
              tenant_(other.tenant_), guard_(std::move(other.guard_))
        {
            other.engine_ = nullptr;
        }
        Stream &operator=(Stream &&other) noexcept
        {
            if (this != &other) {
                guard_ = std::move(other.guard_);
                engine_ = other.engine_;
                id_ = other.id_;
                tenant_ = other.tenant_;
                other.engine_ = nullptr;
            }
            return *this;
        }
        Stream(const Stream &) = delete;
        Stream &operator=(const Stream &) = delete;

        u64 id() const { return id_; }
        /** Tenant this stream's requests bill to. */
        u64 tenant() const { return tenant_; }

      private:
        friend class ServingEngine;
        Stream(ServingEngine *engine, u64 id, u64 tenant,
               const ckks::KeySwitchCache &cache)
            : engine_(engine), id_(id), tenant_(tenant), guard_(cache)
        {
        }

        ServingEngine *engine_;
        u64 id_;
        u64 tenant_;
        ckks::KeySwitchCache::ReaderGuard guard_;
    };

    /**
     * Open a request stream (thread-safe). @p opts names the tenant
     * the stream bills to and sets that tenant's scheduling weight.
     * The default is tenant 0 at weight 1 -- a single-tenant engine
     * degenerates to the plain FIFO batch former.
     */
    Stream openStream(StreamOptions opts = {});

    /**
     * Submit one request: run @p input through the caller-owned fused
     * @p pipe. Returns immediately; the future resolves to the result
     * ciphertext, or to QueueFullError / ShutdownError /
     * DeadlineError on rejection or shedding, or to the evaluation
     * error if the batch failed. The pipeline must contain no
     * ciphertext-operand (rhs) stages -- those are batch-shaped and
     * cannot be re-batched dynamically -- and must outlive the
     * future's completion.
     *
     * @throws std::invalid_argument on misuse detected at submit time
     *         (foreign/moved-from stream, rhs stages, empty input).
     */
    std::future<ckks::Ciphertext> submit(Stream &stream,
                                         const ckks::Pipeline &pipe,
                                         ckks::Ciphertext input,
                                         SubmitOptions opts = {});
    /** Stages hold pointers; a temporary pipeline would dangle. */
    std::future<ckks::Ciphertext> submit(Stream &, ckks::Pipeline &&,
                                         ckks::Ciphertext,
                                         SubmitOptions = {}) = delete;

    /**
     * Submit against a compiled model: @p model must be a
     * 1-input / 1-output graph (requests are single ciphertexts; the
     * engine forms the CtVec batches). The engine serialises runs of
     * one CompiledGraph (its value slots are reused per run), so a
     * model shared by many streams executes its coalesced batches one
     * after another -- which is the batching win, not a limitation.
     */
    std::future<ckks::Ciphertext> submit(Stream &stream,
                                         graph::CompiledGraph &model,
                                         ckks::Ciphertext input,
                                         SubmitOptions opts = {});

    /** @name Dispatch gate. pause() lets requests accumulate (they
     *  still count against the queue bound); resume() releases the
     *  dispatchers. @{ */
    void pause();
    void resume();
    /** @} */

    /**
     * Stop accepting, run every already-queued request to completion
     * (shedding only requests whose deadline has already passed), and
     * join the dispatchers. Idempotent; called by the destructor.
     * Submissions during/after shutdown resolve to ShutdownError.
     */
    void shutdown();

    ServingStats stats() const;
    /** Per-tenant counter snapshot (tenants seen so far). */
    std::map<u64, TenantStats> tenantStats() const;
    /** Requests queued and not yet claimed by a dispatcher. */
    size_t queueDepth() const;

    /**
     * Wall-clock latency estimate (microseconds) the deadline
     * admission control uses for @p pipe at @p level: the cost
     * model's batch-1 pipelineLatencyUs times costScale, 0 when no
     * cost model is configured. Exposed so clients can pick feasible
     * deadlines from the same number the engine rejects against.
     */
    double estimatePipelineUs(const ckks::Pipeline &pipe,
                              size_t level) const;

    const ckks::CkksContext &context() const { return ctx_; }

  private:
    using Clock = std::chrono::steady_clock;

    struct Request
    {
        const ckks::Pipeline *pipe = nullptr;  ///< exactly one of
        graph::CompiledGraph *model = nullptr; ///< pipe / model set
        ckks::Ciphertext input;
        std::promise<ckks::Ciphertext> result;
        u64 stream = 0;
        u64 tenant = 0;
        bool hasDeadline = false;
        Clock::time_point deadline{};
    };

    /** Batch-forming key: the model identity (== its rotation-key
     *  working set) plus the request's level and exact scale bits. */
    struct BatchKey
    {
        const void *target;
        size_t limbs;
        u64 scaleBits;

        bool operator==(const BatchKey &o) const
        {
            return target == o.target && limbs == o.limbs &&
                   scaleBits == o.scaleBits;
        }
    };

    static BatchKey keyOf(const Request &r);

    void checkStream(const Stream &stream) const;
    std::future<ckks::Ciphertext> enqueue(Request r);
    /** Model-microseconds estimate for @p r (uncalibrated), cached by
     *  (model identity, level); 0 when no cost model / no price. */
    double modelEstimateUs(const Request &r) const;
    void dispatchLoop();
    /** Move every expired entry out of the scheduler into @p shed,
     *  updating the shed counters. m_ must be held; the promises are
     *  fulfilled by the caller outside the lock. */
    void collectExpiredLocked(std::vector<Request> &shed);
    /** Form one batch: DRR/EDF leader + same-key fill. m_ held. */
    std::vector<Request> formBatchLocked();
    void execute(std::vector<Request> &reqs);
    std::mutex &modelLock(const void *model);

    const ckks::CkksContext &ctx_;
    const ServingConfig cfg_;
    ckks::BatchEvaluator batch_;

    mutable std::mutex m_;
    std::condition_variable cv_;
    /** Per-tenant EDF queues under weighted deficit-round-robin. */
    DrrScheduler<Request> sched_;
    bool paused_ = false;
    bool stopping_ = false;
    ServingStats stats_;
    std::map<u64, TenantStats> tenantStats_;
    /** Per-CompiledGraph run serialisation (value-slot reuse). */
    std::map<const void *, std::unique_ptr<std::mutex>> modelLocks_;
    /** (model identity, level) -> model-us estimate memo. */
    mutable std::map<std::pair<const void *, size_t>, double> estCache_;

    std::atomic<u64> nextStream_{0};
    std::vector<std::thread> dispatchers_;
};

} // namespace cross::serving
