/**
 * @file
 * Multi-tenant request scheduler: per-tenant queues drained by
 * weighted deficit-round-robin (DRR), earliest-deadline-first inside a
 * tenant.
 *
 * This is the policy half of the deadline-aware serving engine
 * (serving.h), factored out as a plain data structure so the fairness
 * and starvation properties can be tested deterministically -- no
 * threads, no clocks except the caller-supplied deadline stamps:
 *
 *  - Each tenant owns one queue ordered earliest-deadline-first
 *    (entries without a deadline sort after every deadline-bearing
 *    entry, FIFO among themselves), so the most urgent request of the
 *    tenant that is next "up" is always at its queue front.
 *  - popNext() picks the tenant to serve by classic DRR: tenants with
 *    pending work rotate in round-robin order; on a tenant's turn its
 *    deficit grows by its weight, each served request costs one unit,
 *    and the turn ends when the deficit runs out. Long-run service is
 *    therefore proportional to weight -- a weight-1 tenant still gets
 *    1/(sum of weights) of the service no matter how hard a weight-8
 *    tenant pushes (the no-starvation property serving_test asserts).
 *  - popMatching() lets the engine fill the rest of a batch with
 *    requests that share the leader's (model, level, scale) batch key
 *    from *any* tenant, charging each donor tenant's deficit. Deficits
 *    may go negative; later rounds repay the debt, so opportunistic
 *    batch-fill keeps the rotation-key working-set amortisation
 *    without breaking long-run weighted fairness.
 *  - popExpired() sheds every entry whose deadline has already passed
 *    -- EDF order makes that a queue-front scan per tenant.
 *
 * Not thread-safe: the engine calls it under its own mutex.
 */
#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace cross::serving {

/**
 * Per-tenant weighted-DRR + per-request EDF scheduler over opaque
 * payloads. @tparam Payload is move-only-friendly (the engine stores
 * whole requests, promises included).
 */
template <typename Payload>
class DrrScheduler
{
  public:
    using Clock = std::chrono::steady_clock;
    using TimePoint = Clock::time_point;

    /** One queued item plus its scheduling envelope. */
    struct Entry
    {
        u64 tenant = 0;
        u64 seq = 0;             ///< admission order (tie-break)
        bool hasDeadline = false;
        TimePoint deadline{};    ///< valid when hasDeadline
        Payload payload;
    };

    /**
     * Set @p tenant's DRR weight (service share per round). Creating
     * or re-opening a stream updates this; the last setting wins.
     * @throws std::invalid_argument on weight 0.
     */
    void
    setWeight(u64 tenant, u32 weight)
    {
        requireThat(weight > 0,
                    "DrrScheduler: tenant weight must be positive");
        tenantFor(tenant).weight = weight;
    }

    /** Current weight of @p tenant (default 1). */
    u32
    weight(u64 tenant) const
    {
        const auto it = tenants_.find(tenant);
        return it == tenants_.end() ? 1u : it->second.weight;
    }

    /**
     * Enqueue @p payload for @p tenant at the EDF position of its
     * queue: ascending deadline, no-deadline entries last, admission
     * order among equals.
     */
    void
    push(u64 tenant, std::optional<TimePoint> deadline, Payload payload)
    {
        Entry e;
        e.tenant = tenant;
        e.seq = nextSeq_++;
        e.hasDeadline = deadline.has_value();
        if (e.hasDeadline)
            e.deadline = *deadline;
        e.payload = std::move(payload);

        Tenant &t = tenantFor(tenant);
        const auto pos = std::upper_bound(
            t.q.begin(), t.q.end(), e,
            [](const Entry &a, const Entry &b) { return edfBefore(a, b); });
        t.q.insert(pos, std::move(e));
        ++size_;
        activate(tenant, t);
    }

    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /**
     * Serve the next request: weighted DRR across tenants, EDF within
     * the chosen tenant. Empty scheduler returns nullopt.
     */
    std::optional<Entry>
    popNext()
    {
        while (size_ > 0) {
            internalCheck(!rr_.empty(),
                          "DrrScheduler: pending work but no active "
                          "tenant");
            Tenant &t = tenants_.at(rr_.front());
            if (t.q.empty()) {
                deactivateFront(t);
                continue;
            }
            if (!t.charged) {
                // Round entry: one quantum per turn, sized by weight.
                t.deficit += static_cast<double>(t.weight);
                t.charged = true;
            }
            if (t.deficit >= 1.0) {
                Entry e = std::move(t.q.front());
                t.q.pop_front();
                --size_;
                t.deficit -= 1.0;
                if (t.q.empty())
                    deactivateFront(t);
                return e;
            }
            // Turn over: move to the back of the rotation.
            t.charged = false;
            rr_.push_back(rr_.front());
            rr_.pop_front();
        }
        return std::nullopt;
    }

    /**
     * Batch fill: pop up to @p max entries satisfying @p pred (the
     * leader's batch key), scanning tenants in rotation order and each
     * tenant's queue in EDF order. Every entry taken charges its
     * tenant's deficit (which may go negative -- the debt is repaid in
     * later DRR rounds), so opportunistic coalescing cannot inflate a
     * tenant's long-run share.
     */
    template <typename Pred>
    std::vector<Entry>
    popMatching(const Pred &pred, size_t max)
    {
        std::vector<Entry> taken;
        if (max == 0 || size_ == 0)
            return taken;
        const std::vector<u64> order(rr_.begin(), rr_.end());
        for (const u64 id : order) {
            Tenant &t = tenants_.at(id);
            for (auto it = t.q.begin();
                 it != t.q.end() && taken.size() < max;) {
                if (pred(static_cast<const Entry &>(*it))) {
                    taken.push_back(std::move(*it));
                    it = t.q.erase(it);
                    --size_;
                    t.deficit -= 1.0;
                } else {
                    ++it;
                }
            }
            if (t.q.empty())
                deactivate(id, t);
            if (taken.size() >= max)
                break;
        }
        return taken;
    }

    /**
     * Shed every entry whose deadline has passed @p now. EDF ordering
     * puts each tenant's earliest deadline at its queue front, so this
     * is a front scan per tenant (no-deadline entries are never shed).
     */
    std::vector<Entry>
    popExpired(TimePoint now)
    {
        std::vector<Entry> expired;
        if (size_ == 0)
            return expired;
        const std::vector<u64> order(rr_.begin(), rr_.end());
        for (const u64 id : order) {
            Tenant &t = tenants_.at(id);
            while (!t.q.empty() && t.q.front().hasDeadline &&
                   t.q.front().deadline < now) {
                expired.push_back(std::move(t.q.front()));
                t.q.pop_front();
                --size_;
            }
            if (t.q.empty())
                deactivate(id, t);
        }
        return expired;
    }

  private:
    struct Tenant
    {
        std::deque<Entry> q; ///< EDF-ordered
        u32 weight = 1;
        double deficit = 0.0;
        bool charged = false; ///< quantum granted for the current turn
        bool active = false;  ///< present in rr_
    };

    static bool
    edfBefore(const Entry &a, const Entry &b)
    {
        if (a.hasDeadline != b.hasDeadline)
            return a.hasDeadline; // deadlines before best-effort
        if (a.hasDeadline && a.deadline != b.deadline)
            return a.deadline < b.deadline;
        return a.seq < b.seq;
    }

    Tenant &
    tenantFor(u64 id)
    {
        return tenants_[id]; // value-initialised on first use
    }

    void
    activate(u64 id, Tenant &t)
    {
        if (!t.active) {
            t.active = true;
            rr_.push_back(id);
        }
    }

    /** Remove the rotation-front tenant (must be @p t) from rr_. */
    void
    deactivateFront(Tenant &t)
    {
        t.active = false;
        t.charged = false;
        t.deficit = 0.0; // an idle tenant accrues no credit or debt
        rr_.pop_front();
    }

    void
    deactivate(u64 id, Tenant &t)
    {
        if (!t.active)
            return;
        t.active = false;
        t.charged = false;
        t.deficit = 0.0;
        rr_.erase(std::find(rr_.begin(), rr_.end(), id));
    }

    std::map<u64, Tenant> tenants_;
    std::deque<u64> rr_; ///< rotation order of tenants with work
    u64 nextSeq_ = 0;
    size_t size_ = 0;
};

} // namespace cross::serving
