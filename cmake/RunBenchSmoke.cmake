# Test driver for the bench_smoke CTest entries: runs a benchmark
# binary in --json mode and validates the emitted file parses as JSON
# and contains at least one record; when a python3 and the shared
# cross-bench-v1 validator are available, the full schema check runs
# too (the same validator CI applies to every uploaded artifact).
# Invoked as
#   cmake -DBENCH_BIN=... -DOUT_JSON=... [-DBENCH_ARGS=a;b;c]
#         [-DVALIDATOR=.../validate_bench_json.py] -P RunBenchSmoke.cmake

if(NOT BENCH_BIN OR NOT OUT_JSON)
    message(FATAL_ERROR "RunBenchSmoke.cmake requires BENCH_BIN and OUT_JSON")
endif()

file(REMOVE "${OUT_JSON}")

execute_process(
    COMMAND "${BENCH_BIN}" --json "${OUT_JSON}" ${BENCH_ARGS}
    RESULT_VARIABLE rv)
if(NOT rv EQUAL 0)
    message(FATAL_ERROR "${BENCH_BIN} exited with ${rv}")
endif()

if(NOT EXISTS "${OUT_JSON}")
    message(FATAL_ERROR "--json did not produce ${OUT_JSON}")
endif()

file(READ "${OUT_JSON}" content)

# string(JSON) fatally errors on malformed JSON, which is the check.
string(JSON bench_name GET "${content}" "bench")
string(JSON record_count LENGTH "${content}" "records")
if(record_count LESS 1)
    message(FATAL_ERROR "no benchmark records in ${OUT_JSON}")
endif()
string(JSON first_ns GET "${content}" "records" 0 "ns_per_op")

message(STATUS "bench '${bench_name}': ${record_count} record(s), "
               "first ns_per_op=${first_ns}")

if(VALIDATOR)
    find_program(PYTHON3_EXE python3)
    if(PYTHON3_EXE)
        execute_process(
            COMMAND "${PYTHON3_EXE}" "${VALIDATOR}" "${OUT_JSON}"
            RESULT_VARIABLE vrv)
        if(NOT vrv EQUAL 0)
            message(FATAL_ERROR
                    "${OUT_JSON} failed the cross-bench-v1 schema check")
        endif()
    else()
        message(STATUS "python3 not found - skipping schema validation")
    endif()
endif()
