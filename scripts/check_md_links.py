#!/usr/bin/env python3
"""Markdown link checker for the repo's docs (stdlib only, no network).

Scans the given markdown files for inline links and images
(``[text](target)`` / ``![alt](target)``) and reference definitions
(``[label]: target``), and fails when a *local* target does not exist
on disk. External links (http/https/mailto) are not fetched -- CI must
stay hermetic -- and pure in-page anchors (``#section``) are skipped;
a local target's ``#fragment`` suffix is stripped before the existence
check, so ``docs/SERVING.md#deadlines`` checks only the file.

Targets are resolved relative to the markdown file that links them,
which is how GitHub renders them -- a link that works in the rendered
repo passes here and vice versa.

Usage: check_md_links.py FILE.md [FILE.md ...]

Exits 0 when every local link resolves; prints one line per broken
link and exits 1 otherwise.
"""

import os
import re
import sys

# Inline [text](target) and ![alt](target); target ends at the first
# unescaped ')' (no nested-paren support -- the repo's links are plain
# paths). Reference definitions: [label]: target
INLINE = re.compile(r"!?\[[^\]]*\]\(([^()\s]+)(?:\s+\"[^\"]*\")?\)")
REFDEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def strip_code(text):
    """Drop fenced and inline code spans -- `...` examples are not links."""
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    return re.sub(r"`[^`]*`", "", text)


def check_file(path):
    try:
        with open(path, encoding="utf-8") as f:
            text = strip_code(f.read())
    except OSError as e:
        print(f"{path}: unreadable: {e}", file=sys.stderr)
        return False
    base = os.path.dirname(os.path.abspath(path))
    ok = True
    targets = INLINE.findall(text) + REFDEF.findall(text)
    for target in targets:
        if target.startswith(EXTERNAL) or target.startswith("#"):
            continue
        local = target.split("#", 1)[0]
        if not local:
            continue
        resolved = os.path.normpath(os.path.join(base, local))
        if not os.path.exists(resolved):
            print(f"{path}: broken link -> {target}", file=sys.stderr)
            ok = False
    return ok


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    results = [check_file(p) for p in argv[1:]]
    if all(results):
        print(f"checked {len(results)} file(s): all local links resolve")
        return 0
    return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
